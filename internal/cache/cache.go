// Package cache implements the set-associative cache tag stores of the
// simulated hierarchy (paper Table 2): LRU replacement, per-line prefetch
// and use bits, low-priority insertion (used by DSPatch when the coverage
// pattern is untrusted, §3.6), and an optional prefetch-aware dead-block
// victim policy approximating the baseline LLC replacement of the paper.
//
// Timing (latencies, MSHRs) is composed on top by package memsys; this
// package is purely the state of which lines are resident.
//
// The tag store is the hottest data structure of the whole simulator — every
// access, probe and fill scans a set, and prefetch-heavy runs scan around
// ten sets per simulated reference. The layout is therefore built for the
// scan, not for the entry. Each set is one contiguous block of uint64 words:
//
//	word 0                      packed state: one valid/dirty/prefetch/used
//	                            nibble per way
//	words 1 .. 1+ptagWords      packed partial tags, one byte per way
//	words tagOff .. +Ways       full tags
//	words lruOff .. +Ways       LRU stamps (0 = low-priority fill)
//
// Membership tests SWAR-scan the partial-tag words (a whole 8-way set in one
// comparison) and only verify full tags on candidate bytes; victim selection
// derives its invalid and dead-block candidate sets from the packed state
// word with three bit operations. Keeping a set's words adjacent means the
// typical probe touches one host cache line and a fill two or three, instead
// of gathering from four distant arrays.
//
// Replacement decisions are bit-for-bit those of the straightforward
// scan-the-ways implementation: first invalid way, else (when DeadBlockAware)
// the LRU prefetched-but-unused way, else plain LRU, ties always to the
// lowest way index.
package cache

import (
	"math/bits"

	"dspatch/internal/memaddr"
)

// Config sizes one cache level.
type Config struct {
	Name      string // for reporting, e.g. "L1D"
	SizeBytes int
	Ways      int
	// DeadBlockAware enables prefetch-aware victim selection: prefetched
	// lines that were never demanded are evicted first, approximating the
	// dead-block predictor the paper's baseline LLC uses.
	DeadBlockAware bool
	// Reference selects the pre-optimization scan-the-ways tag store (see
	// reference.go), kept so differential tests can prove the packed layout
	// bit-identical. Simulations never set it.
	Reference bool
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / memaddr.LineBytes / c.Ways }

// Per-way state bits, one nibble per way in the packed state word.
const (
	fValid uint64 = 1 << iota
	fDirty
	fPrefetch // filled by a prefetch and not yet demanded
	fUsed     // demanded at least once since fill

	nibbleLSBs = 0x1111111111111111 // bit 0 of every nibble
	byteLSBs   = 0x0101010101010101
	byteMSBs   = 0x8080808080808080
)

// Stats counts the events needed for the paper's coverage/accuracy and
// pollution analyses.
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64
	PrefetchFills  uint64
	PrefetchHits   uint64 // demand hits that were the first use of a prefetched line
	PrefetchUnused uint64 // prefetched lines evicted without any demand use
	Evictions      uint64
	DirtyEvictions uint64
}

// Cache is one level's tag store. The zero value is unusable; construct with
// New. Ways is limited to 16 so one packed word covers a set.
type Cache struct {
	cfg       Config
	data      []uint64 // per-set blocks, setStride words each
	setMask   uint64
	tagShift  uint // log2(set count), precomputed: tag() runs per access
	ways      int
	setStride int
	tagOff    int
	lruOff    int
	validFull uint64 // fValid in every in-use nibble
	stamp     uint64
	stats     Stats

	refWays []refWay // non-nil only in Config.Reference mode
}

// New builds a cache from cfg. Set count must be a power of two and Ways at
// most 16 (the hierarchy uses 8 and 16).
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	if cfg.Ways < 1 || cfg.Ways > 16 {
		panic("cache: ways must be in [1,16]")
	}
	ptagWords := (cfg.Ways + 7) / 8
	tagOff := 1 + ptagWords
	lruOff := tagOff + cfg.Ways
	stride := (lruOff + cfg.Ways + 7) &^ 7 // whole 64B lines per block
	if cfg.Reference {
		return &Cache{
			cfg:      cfg,
			refWays:  make([]refWay, sets*cfg.Ways),
			setMask:  uint64(sets - 1),
			tagShift: uint(popShift(uint64(sets - 1))),
			ways:     cfg.Ways,
		}
	}
	return &Cache{
		cfg:       cfg,
		data:      make([]uint64, sets*stride),
		setMask:   uint64(sets - 1),
		tagShift:  uint(popShift(uint64(sets - 1))),
		ways:      cfg.Ways,
		setStride: stride,
		tagOff:    tagOff,
		lruOff:    lruOff,
		validFull: nibbleLSBs * fValid >> uint(64-4*cfg.Ways),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// set returns the block of words holding the set for line l.
func (c *Cache) set(l memaddr.Line) []uint64 {
	i := int(uint64(l)&c.setMask) * c.setStride
	return c.data[i : i+c.setStride]
}

func (c *Cache) tag(l memaddr.Line) uint64 { return uint64(l) >> c.tagShift }

func popShift(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// findWay returns the way index of the given tag if resident, -1 otherwise:
// a SWAR scan of the packed partial tags yields candidate ways, verified
// against the full tag and the valid bit. False SWAR positives only cost an
// extra verification.
func (c *Cache) findWay(set []uint64, tag uint64) int {
	part := byteLSBs * (tag & 0xFF)
	fl := set[0]
	if c.ways <= 8 {
		// Single partial-tag word (the L1/L2 geometry): no outer loop.
		x := set[1] ^ part
		m := (x - byteLSBs) &^ x & byteMSBs
		for m != 0 {
			way := bits.TrailingZeros64(m) >> 3
			m &= m - 1
			if way >= c.ways {
				break
			}
			if set[c.tagOff+way] == tag && fl>>(uint(way)*4)&fValid != 0 {
				return way
			}
		}
		return -1
	}
	for w, pi := 0, 1; w < c.ways; w, pi = w+8, pi+1 {
		x := set[pi] ^ part
		// Zero-byte finder: MSB of each byte that equals the partial tag.
		m := (x - byteLSBs) &^ x & byteMSBs
		for m != 0 {
			way := w + bits.TrailingZeros64(m)>>3
			m &= m - 1
			if way >= c.ways {
				break
			}
			if set[c.tagOff+way] == tag && fl>>(uint(way)*4)&fValid != 0 {
				return way
			}
		}
	}
	return -1
}

// Result describes the outcome of a demand access.
type Result struct {
	Hit bool
	// FirstUseOfPrefetch reports that this demand hit a line a prefetcher
	// brought in and is its first demand use — the event that counts toward
	// prefetch coverage.
	FirstUseOfPrefetch bool
}

// Access performs a demand load or store: it updates LRU and the per-line
// use bits and returns whether the line was resident.
func (c *Cache) Access(l memaddr.Line, write bool) Result {
	if c.refWays != nil {
		return c.refAccess(l, write)
	}
	c.stats.DemandAccesses++
	set := c.set(l)
	c.stamp++
	way := c.findWay(set, c.tag(l))
	if way < 0 {
		c.stats.DemandMisses++
		return Result{}
	}
	c.stats.DemandHits++
	r := Result{Hit: true}
	shift := uint(way) * 4
	nib := set[0] >> shift
	if nib&(fPrefetch|fUsed) == fPrefetch {
		r.FirstUseOfPrefetch = true
		c.stats.PrefetchHits++
	}
	nib = nib&^fPrefetch | fUsed
	if write {
		nib |= fDirty
	}
	set[0] = set[0]&^(0xF<<shift) | (nib&0xF)<<shift
	set[c.lruOff+way] = c.stamp
	return r
}

// Probe reports whether l is resident without perturbing any state.
func (c *Cache) Probe(l memaddr.Line) bool {
	if c.refWays != nil {
		return c.refProbe(l)
	}
	return c.findWay(c.set(l), c.tag(l)) >= 0
}

// FillOpts qualifies a fill.
type FillOpts struct {
	Prefetch bool
	// LowPriority inserts the line at LRU position so it is the next victim
	// unless promoted by a demand hit (DSPatch's pollution mitigation).
	LowPriority bool
	Dirty       bool
	// Absent asserts the caller has just established (via Access or Probe,
	// with no intervening fill of this cache) that the line is not resident,
	// letting Fill skip its duplicate scan. Purely an optimization: the
	// caller owns the proof.
	Absent bool
}

// Victim describes the line displaced by a Fill.
type Victim struct {
	Valid         bool
	Line          memaddr.Line
	WasPrefetched bool // line was prefetched and never demanded
	Dirty         bool
}

// Fill installs line l. If l is already resident the flags are merged and no
// victim results. Otherwise the victim (if any way was valid) is returned so
// callers can write back dirty data and run pollution accounting.
func (c *Cache) Fill(l memaddr.Line, opts FillOpts) Victim {
	if c.refWays != nil {
		return c.refFill(l, opts)
	}
	set := c.set(l)
	tag := c.tag(l)
	if !opts.Absent {
		if way := c.findWay(set, tag); way >= 0 {
			// Duplicate fill (e.g. a prefetch landing after the demand
			// already missed and filled). Keep the strongest state.
			if opts.Dirty {
				set[0] |= fDirty << (uint(way) * 4)
			}
			return Victim{}
		}
	}
	if opts.Prefetch {
		c.stats.PrefetchFills++
	}

	x := set[0]
	var vi int
	switch valid := x & nibbleLSBs; {
	case valid != c.validFull:
		// First invalid way, exactly as an ascending scan would find it.
		vi = bits.TrailingZeros64(c.validFull&^valid) / 4
	default:
		dead := uint64(0)
		if c.cfg.DeadBlockAware {
			// Nibbles with valid+prefetch set and used clear.
			dead = x & (x >> 2) &^ (x >> 3) & nibbleLSBs
		}
		if dead != 0 {
			vi = c.argminLRU(set, dead)
		} else {
			vi = c.argminAll(set)
		}
	}

	var victim Victim
	shift := uint(vi) * 4
	if nib := x >> shift; nib&fValid != 0 {
		victim = Victim{
			Valid:         true,
			Line:          c.lineOf(l, set[c.tagOff+vi]),
			WasPrefetched: nib&(fPrefetch|fUsed) == fPrefetch,
			Dirty:         nib&fDirty != 0,
		}
		c.stats.Evictions++
		if nib&fDirty != 0 {
			c.stats.DirtyEvictions++
		}
		if nib&(fPrefetch|fUsed) == fPrefetch {
			c.stats.PrefetchUnused++
		}
	}
	c.stamp++
	set[c.tagOff+vi] = tag
	nib := fValid
	if opts.Dirty {
		nib |= fDirty
	}
	if opts.Prefetch {
		nib |= fPrefetch
	}
	set[0] = x&^(0xF<<shift) | nib<<shift
	pi := 1 + vi>>3
	pshift := uint(vi&7) * 8
	set[pi] = set[pi]&^(0xFF<<pshift) | (tag&0xFF)<<pshift
	if opts.LowPriority {
		set[c.lruOff+vi] = 0
	} else {
		set[c.lruOff+vi] = c.stamp
	}
	return victim
}

// argminAll returns the way with the smallest LRU stamp, ties to the lowest
// way. It is argminLRU over every way, as a plain bounds-check-free loop:
// this is the victim scan of every fill into a full set without dead-block
// candidates, the hottest replacement path.
func (c *Cache) argminAll(set []uint64) int {
	// A plain strict-less-than forward scan: the branch body is two register
	// moves, which the compiler turns into conditional moves, so the loop
	// runs without data-dependent branches. Ties (including several
	// zero-stamp low-priority ways) resolve to the lowest way, exactly as
	// any forward scan with strict less-than does.
	lru := set[c.lruOff : c.lruOff+c.ways]
	best, bestStamp := 0, lru[0]
	for i := 1; i < len(lru); i++ {
		s := lru[i]
		if s < bestStamp {
			bestStamp = s
			best = i
		}
	}
	return best
}

// argminLRU returns the way with the smallest LRU stamp among the ways whose
// nibble-LSB is set in mask, ties to the lowest way — identical to a forward
// scan with a strict less-than.
func (c *Cache) argminLRU(set []uint64, mask uint64) int {
	best, bestStamp := 0, ^uint64(0)
	for m := mask; m != 0; m &= m - 1 {
		way := bits.TrailingZeros64(m) / 4
		if s := set[c.lruOff+way]; s < bestStamp {
			best, bestStamp = way, s
		}
	}
	return best
}

// Invalidate removes l if resident, returning whether it was dirty.
func (c *Cache) Invalidate(l memaddr.Line) (present, dirty bool) {
	if c.refWays != nil {
		return c.refInvalidate(l)
	}
	set := c.set(l)
	way := c.findWay(set, c.tag(l))
	if way < 0 {
		return false, false
	}
	shift := uint(way) * 4
	dirty = set[0]>>shift&fDirty != 0
	set[0] &^= fValid << shift
	return true, dirty
}

// lineOf reconstructs a victim's line address from its tag and the set the
// fill targeted.
func (c *Cache) lineOf(fillLine memaddr.Line, tag uint64) memaddr.Line {
	setIdx := uint64(fillLine) & c.setMask
	return memaddr.Line(tag<<c.tagShift | setIdx)
}
