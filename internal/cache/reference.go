package cache

import "dspatch/internal/memaddr"

// This file preserves the pre-optimization tag store — the straightforward
// scan-the-ways implementation the packed SWAR layout replaced — behind
// Config.Reference. It exists so the differential equivalence tests in
// internal/sim can prove the optimized store bit-identical on every counter
// and replacement decision; simulations never enable it.

// refWay is one cache line's tag state in the reference layout.
type refWay struct {
	tag      uint64
	lru      uint64 // last-touch stamp; 0 on low-priority fill
	valid    bool
	dirty    bool
	prefetch bool // filled by a prefetch and not yet demanded
	used     bool // demanded at least once since fill
}

func (c *Cache) refSet(l memaddr.Line) []refWay {
	i := uint64(l) & c.setMask
	return c.refWays[i*uint64(c.ways) : (i+1)*uint64(c.ways)]
}

func (c *Cache) refAccess(l memaddr.Line, write bool) Result {
	c.stats.DemandAccesses++
	set := c.refSet(l)
	tag := c.tag(l)
	c.stamp++
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			c.stats.DemandHits++
			r := Result{Hit: true}
			if w.prefetch && !w.used {
				r.FirstUseOfPrefetch = true
				c.stats.PrefetchHits++
			}
			w.prefetch = false
			w.used = true
			w.lru = c.stamp
			if write {
				w.dirty = true
			}
			return r
		}
	}
	c.stats.DemandMisses++
	return Result{}
}

func (c *Cache) refProbe(l memaddr.Line) bool {
	set := c.refSet(l)
	tag := c.tag(l)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) refFill(l memaddr.Line, opts FillOpts) Victim {
	set := c.refSet(l)
	tag := c.tag(l)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			w.dirty = w.dirty || opts.Dirty
			return Victim{}
		}
	}
	if opts.Prefetch {
		c.stats.PrefetchFills++
	}
	vi := c.refPickVictim(set)
	w := &set[vi]
	var victim Victim
	if w.valid {
		victim = Victim{Valid: true, Line: c.lineOf(l, w.tag), WasPrefetched: w.prefetch && !w.used, Dirty: w.dirty}
		c.stats.Evictions++
		if w.dirty {
			c.stats.DirtyEvictions++
		}
		if w.prefetch && !w.used {
			c.stats.PrefetchUnused++
		}
	}
	c.stamp++
	*w = refWay{tag: tag, valid: true, dirty: opts.Dirty, prefetch: opts.Prefetch, lru: c.stamp}
	if opts.LowPriority {
		w.lru = 0
	}
	return victim
}

// refPickVictim chooses the way to replace: first invalid; then, when
// DeadBlockAware, the LRU prefetched-but-unused line; otherwise plain LRU.
func (c *Cache) refPickVictim(set []refWay) int {
	best, bestStamp := -1, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.cfg.DeadBlockAware {
		for i := range set {
			if set[i].prefetch && !set[i].used && set[i].lru < bestStamp {
				best, bestStamp = i, set[i].lru
			}
		}
		if best >= 0 {
			return best
		}
	}
	for i := range set {
		if set[i].lru < bestStamp {
			best, bestStamp = i, set[i].lru
		}
	}
	return best
}

func (c *Cache) refInvalidate(l memaddr.Line) (present, dirty bool) {
	set := c.refSet(l)
	tag := c.tag(l)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			w.valid = false
			return
		}
	}
	return
}
