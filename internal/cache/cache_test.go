package cache

import (
	"testing"
	"testing/quick"

	"dspatch/internal/memaddr"
)

func smallCache() *Cache {
	// 4 sets × 2 ways × 64B = 512B.
	return New(Config{Name: "T", SizeBytes: 512, Ways: 2})
}

func TestConfigSets(t *testing.T) {
	cfg := Config{SizeBytes: 32 << 10, Ways: 8}
	if cfg.Sets() != 64 {
		t.Errorf("32KB/8way sets = %d, want 64", cfg.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if r := c.Access(100, false); r.Hit {
		t.Fatal("cold access should miss")
	}
	c.Fill(100, FillOpts{})
	if r := c.Access(100, false); !r.Hit {
		t.Fatal("after fill should hit")
	}
	s := c.Stats()
	if s.DemandHits != 1 || s.DemandMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 4 sets, 2 ways; lines with same low 2 bits collide
	// Lines 0, 4, 8 all map to set 0.
	c.Fill(0, FillOpts{})
	c.Fill(4, FillOpts{})
	c.Access(0, false) // touch 0 so 4 is LRU
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 4 {
		t.Errorf("victim = %+v, want line 4", v)
	}
	if !c.Probe(0) || !c.Probe(8) || c.Probe(4) {
		t.Error("wrong resident set after eviction")
	}
}

func TestPrefetchFirstUse(t *testing.T) {
	c := smallCache()
	c.Fill(7, FillOpts{Prefetch: true})
	r := c.Access(7, false)
	if !r.Hit || !r.FirstUseOfPrefetch {
		t.Fatalf("first demand on prefetched line: %+v", r)
	}
	r = c.Access(7, false)
	if !r.Hit || r.FirstUseOfPrefetch {
		t.Fatalf("second demand should not count as first use: %+v", r)
	}
	if s := c.Stats(); s.PrefetchHits != 1 || s.PrefetchFills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPrefetchUnusedCounted(t *testing.T) {
	c := smallCache()
	c.Fill(0, FillOpts{Prefetch: true})
	c.Fill(4, FillOpts{})
	v := c.Fill(8, FillOpts{}) // evicts line 0 (prefetched, unused, oldest)
	if !v.Valid || !v.WasPrefetched {
		t.Errorf("victim = %+v, want prefetched-unused", v)
	}
	if s := c.Stats(); s.PrefetchUnused != 1 {
		t.Errorf("PrefetchUnused = %d, want 1", s.PrefetchUnused)
	}
}

func TestLowPriorityFillEvictedFirst(t *testing.T) {
	c := smallCache()
	c.Fill(0, FillOpts{})
	c.Fill(4, FillOpts{Prefetch: true, LowPriority: true})
	// Even though 4 was filled last, it sits at LRU and is evicted first.
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 4 {
		t.Errorf("victim = %+v, want low-priority line 4", v)
	}
}

func TestLowPriorityPromotedByDemand(t *testing.T) {
	c := smallCache()
	c.Fill(0, FillOpts{})
	c.Fill(4, FillOpts{Prefetch: true, LowPriority: true})
	c.Access(4, false) // promote
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 0 {
		t.Errorf("victim = %+v, want line 0 after promotion of 4", v)
	}
}

func TestDeadBlockAwareVictim(t *testing.T) {
	c := New(Config{SizeBytes: 512, Ways: 2, DeadBlockAware: true})
	c.Fill(0, FillOpts{Prefetch: true}) // unused prefetch
	c.Fill(4, FillOpts{})
	c.Access(4, false)
	c.Access(0, false) // use the prefetch: no longer dead
	// Now neither is dead; LRU (4... actually 4 touched before 0) evicted.
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 4 {
		t.Errorf("victim = %+v, want 4 (LRU, no dead block)", v)
	}

	c2 := New(Config{SizeBytes: 512, Ways: 2, DeadBlockAware: true})
	c2.Fill(0, FillOpts{})
	c2.Fill(4, FillOpts{Prefetch: true})
	c2.Access(0, false) // 0 is MRU and used; 4 is prefetched-unused
	v = c2.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 4 {
		t.Errorf("victim = %+v, want dead prefetched line 4", v)
	}
}

func TestDirtyEviction(t *testing.T) {
	c := smallCache()
	c.Fill(0, FillOpts{})
	c.Access(0, true) // write
	c.Fill(4, FillOpts{})
	v := c.Fill(8, FillOpts{})
	if !v.Valid || v.Line != 0 || !v.Dirty {
		t.Errorf("victim = %+v, want dirty line 0", v)
	}
	if s := c.Stats(); s.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d", s.DirtyEvictions)
	}
}

func TestDuplicateFillNoVictim(t *testing.T) {
	c := smallCache()
	c.Fill(0, FillOpts{})
	v := c.Fill(0, FillOpts{Prefetch: true})
	if v.Valid {
		t.Errorf("duplicate fill should not evict, got %+v", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Fill(0, FillOpts{Dirty: true})
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate = %v,%v", present, dirty)
	}
	if c.Probe(0) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("second invalidate should report absent")
	}
}

func TestVictimLineReconstruction(t *testing.T) {
	// Property: the victim's line address must map to the same set as the
	// fill and be a line we actually inserted earlier.
	f := func(a, b, cIn uint16) bool {
		c := smallCache()
		l1 := memaddr.Line(a)
		l2 := memaddr.Line(uint64(b)<<2 | uint64(a)&3) // same set as l1
		l3 := memaddr.Line(uint64(cIn)<<2 | uint64(a)&3)
		if l1 == l2 || l2 == l3 || l1 == l3 {
			return true // skip degenerate draws
		}
		c.Fill(l1, FillOpts{})
		c.Fill(l2, FillOpts{})
		v := c.Fill(l3, FillOpts{})
		return v.Valid && (v.Line == l1 || v.Line == l2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityProperty(t *testing.T) {
	// After filling N distinct lines that all map across the whole cache,
	// at most SizeBytes/LineBytes lines are resident.
	c := New(Config{SizeBytes: 4096, Ways: 4})
	for i := 0; i < 1000; i++ {
		c.Fill(memaddr.Line(i), FillOpts{})
	}
	resident := 0
	for i := 0; i < 1000; i++ {
		if c.Probe(memaddr.Line(i)) {
			resident++
		}
	}
	if max := 4096 / memaddr.LineBytes; resident > max {
		t.Errorf("resident = %d exceeds capacity %d", resident, max)
	} else if resident < max {
		t.Errorf("resident = %d, expected full cache %d", resident, max)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	New(Config{SizeBytes: 3 * 64, Ways: 1})
}
