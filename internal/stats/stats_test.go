package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{4}, 4},
		{[]float64{1, 4}, 2},
		{[]float64{2, 2, 2}, 2},
		{[]float64{1, 100}, 10},
	}
	for _, tt := range tests {
		if got := Geomean(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, r := range raw {
			x := math.Abs(r)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeomeanClampNonPositive(t *testing.T) {
	if g := Geomean([]float64{0, 4}); g <= 0 {
		t.Errorf("Geomean with zero entry = %v, want positive", g)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(1.06); math.Abs(got-6) > 1e-9 {
		t.Errorf("SpeedupPct(1.06) = %v", got)
	}
	if got := GeomeanSpeedupPct([]float64{1.1, 1.1}); math.Abs(got-10) > 1e-6 {
		t.Errorf("GeomeanSpeedupPct = %v", got)
	}
}

func TestFiniteRatios(t *testing.T) {
	kept, dropped := FiniteRatios([]float64{1.1, 0, math.NaN(), math.Inf(1), -2, 0.9})
	if dropped != 4 {
		t.Errorf("dropped = %d, want 4", dropped)
	}
	if len(kept) != 2 || kept[0] != 1.1 || kept[1] != 0.9 {
		t.Errorf("kept = %v, want [1.1 0.9]", kept)
	}
	if kept, dropped := FiniteRatios(nil); len(kept) != 0 || dropped != 0 {
		t.Errorf("FiniteRatios(nil) = %v, %d", kept, dropped)
	}
}

func TestGeomeanSpeedupPctSkipsDegenerate(t *testing.T) {
	// A single zero ratio (baseline IPC 0) used to be clamped to 1e-9 and
	// drag the aggregate toward -100%; it must now be skipped.
	got := GeomeanSpeedupPct([]float64{1.1, 1.1, 0})
	if math.Abs(got-10) > 1e-6 {
		t.Errorf("GeomeanSpeedupPct with degenerate entry = %v, want 10", got)
	}
	if !math.IsNaN(GeomeanSpeedupPct([]float64{0, math.NaN()})) {
		t.Error("all-degenerate input should aggregate to NaN")
	}
	if !math.IsNaN(GeomeanSpeedupPct(nil)) {
		t.Error("empty input should aggregate to NaN")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 3})
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Errorf("Normalize = %v", out)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize zero vector = %v", zero)
	}
}
