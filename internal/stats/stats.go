// Package stats provides the small statistical helpers the experiment
// harness needs: geometric means (the paper's summary metric), arithmetic
// means and histogram formatting.
package stats

import "math"

// Geomean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny epsilon so a single degenerate run cannot zero the
// aggregate. An empty slice returns 0.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SpeedupPct converts a speedup ratio into the paper's "performance delta
// over baseline" percentage: 1.06 → 6.0.
func SpeedupPct(ratio float64) float64 { return (ratio - 1) * 100 }

// FiniteRatios returns the finite, positive entries of xs plus a count of
// the dropped ones. A degenerate run — a baseline with zero IPC yields a
// speedup ratio of 0, and a zero prefetched IPC over zero baseline yields
// NaN — would otherwise be clamped by Geomean to 1e-9 and drag an entire
// aggregate toward −100%.
func FiniteRatios(xs []float64) (kept []float64, dropped int) {
	kept = make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsInf(x, 1) { // NaN fails x > 0
			kept = append(kept, x)
		}
	}
	return kept, len(xs) - len(kept)
}

// GeomeanSpeedupPct aggregates per-workload speedup ratios into a
// performance-delta percentage, the way the paper's GEOMEAN bars do.
// Degenerate ratios (zero, negative, NaN, +Inf) are skipped rather than
// clamped; NaN is returned when nothing valid remains. Callers that need the
// number of skipped runs use FiniteRatios directly.
func GeomeanSpeedupPct(ratios []float64) float64 {
	kept, _ := FiniteRatios(ratios)
	if len(kept) == 0 {
		return math.NaN()
	}
	return SpeedupPct(Geomean(kept))
}

// Normalize scales xs so they sum to 1 (no-op on a zero vector).
func Normalize(xs []float64) []float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	if sum == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}
