package idx

import (
	"math/rand"
	"testing"
)

// TestBasic covers insert, update, lookup and delete on a handful of keys.
func TestBasic(t *testing.T) {
	tb := New(8)
	if _, ok := tb.Get(42); ok {
		t.Fatal("empty table reports a hit")
	}
	tb.Put(42, 3)
	tb.Put(0, 0) // zero key must be a first-class citizen
	if s, ok := tb.Get(42); !ok || s != 3 {
		t.Fatalf("Get(42) = %d,%t want 3,true", s, ok)
	}
	if s, ok := tb.Get(0); !ok || s != 0 {
		t.Fatalf("Get(0) = %d,%t want 0,true", s, ok)
	}
	tb.Put(42, 5)
	if s, _ := tb.Get(42); s != 5 {
		t.Fatalf("update lost: Get(42) = %d want 5", s)
	}
	tb.Del(42)
	if _, ok := tb.Get(42); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok := tb.Get(0); !ok {
		t.Fatal("unrelated key lost by deletion")
	}
	tb.Del(42) // deleting an absent key is a no-op
}

// TestAgainstMap fuzzes the table against a Go map through random
// insert/update/delete/lookup sequences, including keys engineered to
// collide, exercising the backward-shift deletion chains.
func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := New(64)
	ref := map[uint64]int{}
	// Key pool with deliberate collisions: multiples of the table size hash
	// to nearby homes.
	keys := make([]uint64, 96)
	for i := range keys {
		if i%3 == 0 {
			keys[i] = uint64(i) * 256
		} else {
			keys[i] = rng.Uint64()
		}
	}
	for step := 0; step < 200_000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch op := rng.Intn(4); {
		case op == 0 && len(ref) < 64:
			v := rng.Intn(1 << 20)
			tb.Put(k, v)
			ref[k] = v
		case op == 1:
			tb.Del(k)
			delete(ref, k)
		default:
			got, ok := tb.Get(k)
			want, wantOK := ref[k]
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("step %d: Get(%d) = %d,%t want %d,%t", step, k, got, ok, want, wantOK)
			}
		}
	}
	for k, want := range ref {
		if got, ok := tb.Get(k); !ok || got != want {
			t.Fatalf("final state: Get(%d) = %d,%t want %d,true", k, got, ok, want)
		}
	}
	tb.Reset()
	for k := range ref {
		if _, ok := tb.Get(k); ok {
			t.Fatalf("Reset left key %d", k)
		}
	}
}
