// Package idx provides a tiny open-addressed hash index mapping uint64 keys
// (page numbers, region numbers) to small slot numbers. The prefetcher
// models use it to replace their per-train linear scans over fully
// associative tables — DSPatch's Page Buffer, SMS's accumulation and filter
// tables, AMPM's access maps — with O(1) probes while the tables themselves
// (and their LRU victim scans, which run only on eviction) stay untouched.
//
// The index is an acceleration structure, not state: every lookup answer is
// checked against the backing table by the differential equivalence tests,
// which run the same simulations with the linear scans (Reference mode) and
// demand bit-identical results.
package idx

// Table maps uint64 keys to non-negative int32 slots with linear probing
// and backward-shift deletion. Capacity is fixed at construction; the load
// factor stays at or below 1/4, keeping probe chains short.
type Table struct {
	mask  uint64
	shift uint
	keys  []uint64
	slots []int32 // -1 = empty
}

// New returns a Table sized for up to capacity live keys.
func New(capacity int) *Table {
	size := 4
	for size < 4*capacity {
		size *= 2
	}
	t := &Table{
		mask:  uint64(size - 1),
		shift: uint(64 - log2(size)),
		keys:  make([]uint64, size),
		slots: make([]int32, size),
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	return t
}

// home is the key's preferred position: a Fibonacci hash of the key, which
// scrambles the low bits page/region numbers share.
func (t *Table) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> t.shift
}

// Get returns the slot stored for k.
func (t *Table) Get(k uint64) (int, bool) {
	for i := t.home(k); ; i = (i + 1) & t.mask {
		if t.slots[i] < 0 {
			return 0, false
		}
		if t.keys[i] == k {
			return int(t.slots[i]), true
		}
	}
}

// Put inserts k → slot, or updates the slot if k is present.
func (t *Table) Put(k uint64, slot int) {
	for i := t.home(k); ; i = (i + 1) & t.mask {
		if t.slots[i] < 0 {
			t.keys[i] = k
			t.slots[i] = int32(slot)
			return
		}
		if t.keys[i] == k {
			t.slots[i] = int32(slot)
			return
		}
	}
}

// Del removes k if present, compacting the probe chain behind it
// (backward-shift deletion), so the table never accumulates tombstones.
func (t *Table) Del(k uint64) {
	i := t.home(k)
	for {
		if t.slots[i] < 0 {
			return // absent
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & t.mask
	}
	for {
		t.slots[i] = -1
		j := i
		for {
			j = (j + 1) & t.mask
			if t.slots[j] < 0 {
				return
			}
			// An entry may shift into the hole only if its home position
			// does not lie in the (i, j] probe interval — otherwise moving
			// it would break its own chain.
			h := t.home(t.keys[j])
			if (j-h)&t.mask >= (j-i)&t.mask {
				t.keys[i] = t.keys[j]
				t.slots[i] = t.slots[j]
				i = j
				break
			}
		}
	}
}

// Reset empties the table.
func (t *Table) Reset() {
	for i := range t.slots {
		t.slots[i] = -1
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
