package dspatch

import (
	"context"

	"dspatch/internal/service"
)

// Service re-exports: the simulation-as-a-service daemon (cmd/dspatchd) and
// its Go client. Serve runs the same engine the library functions use, so a
// job submitted over HTTP returns exactly what the equivalent Fig*/Simulate
// call returns, and the two share one memo and persistent run cache.
type (
	// ServiceConfig parameterizes Serve/cmd/dspatchd (addr, worker shards,
	// queue depth, cache dir, drain timeout).
	ServiceConfig = service.Config
	// ServiceClient is a Go client for a running daemon.
	ServiceClient = service.Client
	// ServiceRunSpec is the POST /v1/runs body: one simulation request.
	ServiceRunSpec = service.RunSpec
	// ServiceScaleSpec is the POST /v1/experiments/{id} body: scale knobs.
	ServiceScaleSpec = service.ScaleSpec
	// ServiceJob is the wire form of a submitted job.
	ServiceJob = service.JobView
	// ServiceJobStatus is a job lifecycle state.
	ServiceJobStatus = service.JobStatus
	// ServiceHealth is the /healthz body.
	ServiceHealth = service.Health
	// ServiceFleetConfig makes Serve a campaign coordinator over worker
	// daemons (dspatchd -coordinator): lease-based dispatch, retry and
	// re-dispatch on failure, byte-identical streams.
	ServiceFleetConfig = service.FleetConfig
	// ServiceRetryPolicy governs client-side 503 retries: capped exponential
	// backoff with jitter, honoring Retry-After.
	ServiceRetryPolicy = service.RetryPolicy
)

// Job lifecycle states.
const (
	JobQueued   = service.StatusQueued
	JobRunning  = service.StatusRunning
	JobDone     = service.StatusDone
	JobFailed   = service.StatusFailed
	JobCanceled = service.StatusCanceled
)

// Serve runs the simulation daemon on cfg.Addr until ctx is canceled, then
// drains gracefully: intake stops, running jobs get cfg.DrainTimeout to
// finish, stragglers are canceled mid-simulation. It returns nil after a
// clean drain.
func Serve(ctx context.Context, cfg ServiceConfig) error {
	return service.ListenAndServe(ctx, cfg)
}

// NewServiceClient returns a client for the daemon at baseURL
// (e.g. "http://127.0.0.1:8491") with the default retry policy: transient
// 503 load-shedding answers (full queue, drain in progress) are retried
// with capped exponential backoff and jitter, honoring the daemon's
// Retry-After hint, bounded by the request context. Set Retry to nil (or a
// custom ServiceRetryPolicy) to change that.
func NewServiceClient(baseURL string) *ServiceClient {
	c := service.NewClient(baseURL)
	c.Retry = service.DefaultRetryPolicy()
	return c
}
