// Package dspatch is a from-scratch Go reproduction of "DSPatch: Dual
// Spatial Pattern Prefetcher" (Bera, Nori, Mutlu, Subramoney — MICRO 2019),
// together with the complete simulation substrate the paper's evaluation
// needs: a trace-driven out-of-order core model, a three-level cache
// hierarchy, a DDR4 model with the paper's 2-bit bandwidth-utilization
// signal, the competing prefetchers (SPP, BOP, SMS, AMPM, eSPP, eBOP, a
// PC-stride L1 baseline and a streamer), 75 synthetic workloads in the
// paper's nine categories, and a harness that regenerates every table and
// figure of the evaluation.
//
// This package is the public façade. Typical entry points:
//
//	pf := dspatch.NewDSPatch(dspatch.DefaultDSPatchConfig()) // the prefetcher itself
//	res := dspatch.Simulate(dspatch.WorkloadByName("mcf"), dspatch.SingleThread())
//	fig := dspatch.Fig12(dspatch.QuickScale())               // paper experiments
//
// The implementation lives in internal packages; see README.md for the
// module layout and experiment index.
package dspatch

import (
	"dspatch/internal/bitpattern"
	"dspatch/internal/core"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// Re-exported fundamental types.
type (
	// Addr is a byte-granular physical address.
	Addr = memaddr.Addr
	// Line is a 64B cache-line address.
	Line = memaddr.Line
	// Page is a 4KB physical page number.
	Page = memaddr.Page
	// PC is a program counter used as prefetcher context.
	PC = memaddr.PC

	// Pattern is an anchored spatial bit-pattern (paper §3.3).
	Pattern = bitpattern.Pattern
	// Quartile is a 2-bit quantized fraction — the DRAM bandwidth signal
	// and the pattern-goodness measures use it (paper §3.2, §3.5).
	Quartile = bitpattern.Quartile

	// DSPatchConfig parameterizes the prefetcher (paper Table 1).
	DSPatchConfig = core.Config
	// DSPatch is the dual spatial pattern prefetcher.
	DSPatch = core.DSPatch
	// DSPatchStats reports the prefetcher's internal behaviour.
	DSPatchStats = core.Stats

	// PrefetchRequest is one prefetch candidate.
	PrefetchRequest = prefetch.Request
	// PrefetchAccess is one training event.
	PrefetchAccess = prefetch.Access
	// Prefetcher is the interface every algorithm implements.
	Prefetcher = prefetch.Prefetcher
	// PrefetchContext supplies the bandwidth-utilization signal.
	PrefetchContext = prefetch.Context

	// Workload is one synthetic benchmark.
	Workload = trace.Workload
	// WorkloadCategory is one of the paper's nine classes.
	WorkloadCategory = trace.Category

	// SimOptions configures a simulation run.
	SimOptions = sim.Options
	// SimResult is a run's outcome.
	SimResult = sim.Result
	// PrefetcherKind names an L2 prefetcher configuration.
	PrefetcherKind = sim.PF
)

// Bandwidth-utilization quartiles.
const (
	Q0 = bitpattern.Q0 // < 25%
	Q1 = bitpattern.Q1 // 25–50%
	Q2 = bitpattern.Q2 // 50–75%
	Q3 = bitpattern.Q3 // >= 75%
)

// DSPatch operating modes (paper Fig. 19 ablations).
const (
	ModeFull       = core.ModeFull
	ModeAlwaysCovP = core.ModeAlwaysCovP
	ModeModCovP    = core.ModeModCovP
)

// Prefetcher selections for SimOptions.L2.
const (
	NoPrefetcher   = sim.PFNone
	BOP            = sim.PFBOP
	EnhancedBOP    = sim.PFEBOP
	SMS            = sim.PFSMS
	SPP            = sim.PFSPP
	EnhancedSPP    = sim.PFESPP
	AMPM           = sim.PFAMPM
	Streamer       = sim.PFStreamer
	DSPatchPF      = sim.PFDSPatch
	DSPatchPlusSPP = sim.PFDSPatchSPP
	BOPPlusSPP     = sim.PFBOPSPP
	SMS256PlusSPP  = sim.PFSMS256SPP
	EBOPPlusSPP    = sim.PFEBOPSPP
)

// DefaultDSPatchConfig returns the paper's 3.6KB configuration: 64-entry
// Page Buffer, 256-entry Signature Prediction Table, 128B-granularity
// compression and dual triggers.
func DefaultDSPatchConfig() DSPatchConfig { return core.DefaultConfig() }

// NewDSPatch builds a DSPatch prefetcher instance. It implements Prefetcher:
// feed it L1 misses via Train and it returns prefetch candidates.
func NewDSPatch(cfg DSPatchConfig) *DSPatch { return core.New(cfg) }

// NewPrefetcher builds any of the evaluated prefetchers by name.
func NewPrefetcher(kind PrefetcherKind) Prefetcher { return sim.NewPrefetcher(kind) }

// StaticBandwidth returns a PrefetchContext that always reports the given
// utilization quartile — useful for driving a prefetcher outside the full
// simulator.
func StaticBandwidth(q Quartile) PrefetchContext { return prefetch.StaticContext{Util: q} }

// Workloads returns the full 75-workload roster.
func Workloads() []Workload { return trace.Workloads() }

// WorkloadByName returns the named workload, panicking on unknown names (it
// is a programming error; see Workloads for the roster).
func WorkloadByName(name string) Workload {
	w, ok := trace.ByName(name)
	if !ok {
		panic("dspatch: unknown workload " + name)
	}
	return w
}

// WorkloadsByCategory returns the workloads of one paper category.
func WorkloadsByCategory(cat WorkloadCategory) []Workload { return trace.ByCategory(cat) }

// MemIntensiveWorkloads returns the paper's 42 high-MPKI workloads.
func MemIntensiveWorkloads() []Workload { return trace.MemIntensive() }

// SingleThread returns the paper's single-thread machine: one core, 2MB LLC,
// one DDR4-2133 channel.
func SingleThread() SimOptions { return sim.DefaultST() }

// MultiProgrammed returns the paper's 4-core machine: shared 8MB LLC, two
// DDR4-2133 channels.
func MultiProgrammed() SimOptions { return sim.DefaultMP() }

// Simulate runs one workload on one core.
func Simulate(w Workload, opt SimOptions) SimResult { return sim.RunSingle(w, opt) }

// SimulateMix runs one workload per core (use MultiProgrammed options for
// the paper's 4-core configuration).
func SimulateMix(ws []Workload, opt SimOptions) SimResult { return sim.Run(ws, opt) }

// Speedup returns per-core IPC ratios of with over base.
func Speedup(base, with SimResult) []float64 { return sim.Speedup(base, with) }
