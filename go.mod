module dspatch

go 1.22
