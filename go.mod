module dspatch

go 1.21
