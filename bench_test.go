// Package dspatch's benchmark harness regenerates every table and figure of
// the paper's evaluation (run `go test -bench=. -benchmem`); each benchmark
// prints the rows the paper reports, at the Quick scale so the suite stays
// laptop-sized. Use `cmd/dspatchsim -experiment <id> -full` for the complete
// 75-workload roster. The README's experiment index maps ids to paper
// artifacts.
package dspatch

import (
	"os"
	"sync"
	"testing"

	"dspatch/internal/experiments"
)

// benchScale is smaller than Quick so the full -bench=. sweep finishes in
// minutes on one core.
func benchScale() Scale {
	return Scale{Refs: 15_000, PerCategory: 1, MPMixes: 2, Seed: 1}
}

// once-guards let benchmarks print each figure a single time regardless of
// the -benchtime iteration count.
var printOnce sync.Map

func oncePerBench(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func BenchmarkTable1Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table1()
		oncePerBench("table1", func() {
			experiments.FormatStorage(os.Stdout, "Table 1: DSPatch storage", rows)
		})
	}
}

func BenchmarkTable3Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table3()
		oncePerBench("table3", func() {
			experiments.FormatStorage(os.Stdout, "Table 3: prefetcher storage budgets", rows)
		})
	}
}

func BenchmarkFig1BandwidthScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig1(benchScale())
		oncePerBench("fig1", func() {
			experiments.FormatScaling(os.Stdout, "Fig 1: BOP/SMS/SPP scaling with DRAM bandwidth", r)
		})
	}
}

func BenchmarkFig4CategoryPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig4(benchScale())
		oncePerBench("fig4", func() {
			experiments.FormatCategory(os.Stdout, "Fig 4: BOP/SMS/SPP by category", r)
		})
	}
}

func BenchmarkFig5SMSStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig5(benchScale())
		oncePerBench("fig5", func() { experiments.FormatFig5(os.Stdout, r) })
	}
}

func BenchmarkFig6EnhancedScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig6(benchScale())
		oncePerBench("fig6", func() {
			experiments.FormatScaling(os.Stdout, "Fig 6: scaling incl. eSPP/eBOP", r)
		})
	}
}

func BenchmarkFig11DeltaDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := Fig11a(benchScale())
		oncePerBench("fig11a", func() { experiments.FormatFig11(os.Stdout, a, [6]float64{}) })
	}
}

func BenchmarkFig11Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := Fig11b(benchScale())
		oncePerBench("fig11b", func() { experiments.FormatFig11(os.Stdout, experiments.Fig11aResult{}, h) })
	}
}

func BenchmarkFig12SingleThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig12(benchScale())
		oncePerBench("fig12", func() {
			experiments.FormatCategory(os.Stdout, "Fig 12: single-thread performance", r)
		})
	}
}

func BenchmarkFig13MemIntensive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig13(benchScale())
		oncePerBench("fig13", func() { experiments.FormatFig13(os.Stdout, r) })
	}
}

func BenchmarkFig14Adjunct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig14(benchScale())
		oncePerBench("fig14", func() {
			experiments.FormatCategory(os.Stdout, "Fig 14: adjunct prefetchers to SPP", r)
		})
	}
}

func BenchmarkFig15Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig15(benchScale())
		oncePerBench("fig15", func() {
			experiments.FormatScaling(os.Stdout, "Fig 15: DSPatch+SPP bandwidth scaling", r)
		})
	}
}

func BenchmarkFig16Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig16(benchScale())
		oncePerBench("fig16", func() { experiments.FormatFig16(os.Stdout, r) })
	}
}

func BenchmarkFig17Homogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig17(benchScale())
		oncePerBench("fig17", func() {
			experiments.FormatCategory(os.Stdout, "Fig 17: homogeneous 4-core mixes", r)
		})
	}
}

func BenchmarkFig18MPBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig18(benchScale())
		oncePerBench("fig18", func() { experiments.FormatFig18(os.Stdout, r) })
	}
}

func BenchmarkFig19Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := Fig19(benchScale())
		oncePerBench("fig19", func() { experiments.FormatFig19(os.Stdout, r) })
	}
}

func BenchmarkFig20Pollution(b *testing.B) {
	s := benchScale()
	s.Refs = 60_000 // enough footprint to pressure the 8MB LLC row
	for i := 0; i < b.N; i++ {
		r := Fig20(s)
		oncePerBench("fig20", func() { experiments.FormatFig20(os.Stdout, r) })
	}
}

// BenchmarkHeadline measures the paper's summary experiment as a library
// caller sees it: the process-wide run memo stays warm, so repeated calls
// after the first cost only aggregation.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := Headline(benchScale())
		oncePerBench("headline", func() { experiments.FormatHeadline(os.Stdout, h) })
	}
}

// BenchmarkHeadlineCold is the end-to-end simulation-throughput benchmark:
// the memo is dropped each iteration so every simulation actually runs. This
// is the number the BENCH_*.json perf trajectory tracks.
func BenchmarkHeadlineCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetMemo()
		h := Headline(benchScale())
		oncePerBench("headline", func() { experiments.FormatHeadline(os.Stdout, h) })
	}
}

// ---- Experiment-engine benches: serial vs parallel Fig. 4 at Quick scale.
// The memo is reset each iteration so both measure cold-cache work; the
// parallel variant should win roughly linearly with core count. ----

func BenchmarkFig4QuickSerial(b *testing.B) {
	s := QuickScale().WithParallel(1)
	for i := 0; i < b.N; i++ {
		experiments.ResetMemo()
		Fig4(s)
	}
}

func BenchmarkFig4QuickParallel(b *testing.B) {
	s := QuickScale() // Parallel 0 = GOMAXPROCS workers
	for i := 0; i < b.N; i++ {
		experiments.ResetMemo()
		Fig4(s)
	}
}

// ---- Ablation benches for the design choices the README's experiment
// index calls out. ----

// ablationDelta measures one DSPatch variant's geomean delta over baseline
// on the memory-intensive sample.
func ablationDelta(kind PrefetcherKind, s Scale) float64 {
	r := experiments.AblationDelta(kind, s)
	return r
}

func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationDelta(DSPatchPF, benchScale())
		un := ablationDelta("dspatch-nocompress", benchScale())
		oncePerBench("abl-comp", func() {
			b.Logf("128B compression on %+.1f%% vs off %+.1f%% (storage 3.4KB vs 4.4KB)", full, un)
		})
	}
}

func BenchmarkAblationDualTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dual := ablationDelta(DSPatchPF, benchScale())
		single := ablationDelta("dspatch-singletrigger", benchScale())
		oncePerBench("abl-trig", func() {
			b.Logf("dual trigger %+.1f%% vs single %+.1f%%", dual, single)
		})
	}
}
