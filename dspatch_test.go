package dspatch

import "testing"

func TestFacadeDSPatchRoundTrip(t *testing.T) {
	pf := NewDSPatch(DefaultDSPatchConfig())
	ctx := StaticBandwidth(Q0)
	foot := []int{2, 3, 8, 9}
	for page := Page(0); page < 10; page++ {
		for i, off := range foot {
			pc := PC(0x10)
			if i > 0 {
				pc = 0x20
			}
			pf.Train(PrefetchAccess{PC: pc, Line: page.Line(off)}, ctx, nil)
		}
	}
	pf.Flush(ctx)
	reqs := pf.Train(PrefetchAccess{PC: 0x10, Line: Page(99).Line(2)}, ctx, nil)
	if len(reqs) == 0 {
		t.Fatal("trained DSPatch issued no prefetches via the public API")
	}
	if kb := float64(pf.StorageBits()) / 8192; kb > 3.7 {
		t.Errorf("storage %.2fKB exceeds the paper budget", kb)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) != 83 {
		t.Errorf("Workloads() = %d, want 83", len(Workloads()))
	}
	if len(MemIntensiveWorkloads()) != 47 {
		t.Errorf("MemIntensiveWorkloads() = %d, want 47", len(MemIntensiveWorkloads()))
	}
	w := WorkloadByName("mcf")
	if w.Name != "mcf" {
		t.Error("WorkloadByName failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown workload should panic")
		}
	}()
	WorkloadByName("definitely-not-a-workload")
}

func TestFacadeSimulate(t *testing.T) {
	opt := SingleThread()
	opt.Refs = 5_000
	base := opt
	base.L2 = NoPrefetcher
	b := Simulate(WorkloadByName("linpack"), base)
	opt.L2 = DSPatchPlusSPP
	r := Simulate(WorkloadByName("linpack"), opt)
	sp := Speedup(b, r)
	if len(sp) != 1 || sp[0] <= 0 {
		t.Fatalf("Speedup = %v", sp)
	}
}

func TestFacadePrefetcherRoster(t *testing.T) {
	for _, kind := range []PrefetcherKind{BOP, EnhancedBOP, SMS, SPP, EnhancedSPP, AMPM, Streamer, DSPatchPF} {
		p := NewPrefetcher(kind)
		if p.StorageBits() <= 0 {
			t.Errorf("%s reports no storage", kind)
		}
	}
}
