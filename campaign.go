package dspatch

import (
	"context"
	"encoding/json"
	"io"

	"dspatch/internal/sweep"
)

// Campaign re-exports: the declarative parameter-sweep subsystem
// (internal/sweep). A campaign names axes over the run-spec vocabulary —
// workload mixes, prefetchers, DRAM channels/speed, LLC sizes, refs, seeds —
// and the engine expands it into simulations on the same process-wide
// experiment engine every other front end uses, so interrupted campaigns
// resume for free from the memo and persistent run cache.
type (
	// CampaignSpec is the declarative sweep description (JSON schema in
	// internal/sweep's package comment).
	CampaignSpec = sweep.Campaign
	// CampaignAxes names the swept dimensions.
	CampaignAxes = sweep.Axes
	// CampaignMix is one workloads-axis value (1..8 lanes).
	CampaignMix = sweep.Mix
	// CampaignSample selects grid or seeded-random sampling.
	CampaignSample = sweep.Sample
	// CampaignPoint is one fully-specified simulation of a campaign — the
	// same type the daemon's POST /v1/runs accepts.
	CampaignPoint = sweep.Point
	// CampaignPointRecord is one "point" NDJSON record.
	CampaignPointRecord = sweep.PointRecord
	// CampaignSummary is the final aggregation record.
	CampaignSummary = sweep.Summary
)

// RunCampaign expands and executes a campaign, streaming NDJSON records
// (header, one record per point in canonical order, final summary) to ndjson
// as points complete; a nil writer discards the stream and only the returned
// Summary is kept. workers sets the simulation parallelism (0 = GOMAXPROCS).
// Records are deterministic: the same spec yields byte-identical point
// records on every run, front end and process.
func RunCampaign(ctx context.Context, spec CampaignSpec, ndjson io.Writer, workers int) (CampaignSummary, error) {
	eng := sweep.Engine{Workers: workers}
	var emit func(json.RawMessage) error
	if ndjson != nil {
		emit = sweep.NDJSONEmitter(ndjson)
	}
	return eng.Run(ctx, spec, emit)
}
